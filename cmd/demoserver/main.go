// Command demoserver is the interactive front-end of the demonstration: a
// stdlib net/http server with one parameter form per scenario and inline-SVG
// charts of the resulting series — the reproduction of the demo's web GUI
// (Figures 3-5). Experiments run in-process on the generated databases.
//
// Run with: go run ./cmd/demoserver -addr :8080
package main

import (
	"context"
	"flag"
	"fmt"
	"html/template"
	"log"
	"net/http"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/ssb"
	"repro/internal/workload"
)

var addr = flag.String("addr", ":8080", "listen address")

// page is the template payload.
type page struct {
	Title    string
	Scenario int
	Params   map[string]string
	Chart    template.HTML
	Chart2   template.HTML
	Table    [][]string
	Header   []string
	Note     string
	Err      string
	Elapsed  time.Duration
}

var tmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><title>Reactive & Proactive Sharing — Demo</title>
<style>
body { font-family: sans-serif; margin: 24px; max-width: 1000px; }
nav a { margin-right: 14px; }
form { background: #f4f6f8; padding: 12px; border-radius: 6px; margin: 12px 0; }
label { margin-right: 12px; }
input { width: 90px; }
table { border-collapse: collapse; margin-top: 12px; }
td, th { border: 1px solid #bbb; padding: 4px 10px; font-size: 13px; text-align: right; }
.note { color: #555; font-size: 13px; margin-top: 8px; }
.err { color: #a00; font-weight: bold; }
</style></head><body>
<h1>Reactive and Proactive Sharing Across Concurrent Analytical Queries</h1>
<p>Interactive reproduction of the SIGMOD'14 demonstration: Simultaneous
Pipelining (reactive) vs CJOIN Global Query Plans (proactive) on a QPipe-style
engine. Pick a scenario, adjust parameters, run.</p>
<nav>
  <a href="/?scenario=1">Scenario I: push vs pull SP</a>
  <a href="/?scenario=2">II: concurrency</a>
  <a href="/?scenario=3">III: selectivity</a>
  <a href="/?scenario=4">IV: similarity</a>
</nav>
<h2>{{.Title}}</h2>
<form method="GET" action="/run">
  <input type="hidden" name="scenario" value="{{.Scenario}}">
  {{range $k, $v := .Params}}
    <label>{{$k}} <input name="{{$k}}" value="{{$v}}"></label>
  {{end}}
  <button type="submit">Run</button>
</form>
{{if .Err}}<p class="err">{{.Err}}</p>{{end}}
{{if .Chart}}<div>{{.Chart}}</div>{{end}}
{{if .Chart2}}<div>{{.Chart2}}</div>{{end}}
{{if .Table}}
<table><tr>{{range .Header}}<th>{{.}}</th>{{end}}</tr>
{{range .Table}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>{{end}}</table>
{{end}}
{{if .Elapsed}}<p class="note">measured in {{.Elapsed}}</p>{{end}}
{{if .Note}}<p class="note">{{.Note}}</p>{{end}}
</body></html>`))

// scenarioDefaults returns the parameter form for each scenario.
func scenarioDefaults(s int) (string, map[string]string) {
	switch s {
	case 2:
		return "Scenario II: impact of concurrency (throughput, disk-resident)", map[string]string{
			"sf": "0.01", "clients": "1,2,4,8,16", "duration_ms": "1000", "template": "Q2.1",
		}
	case 3:
		return "Scenario III: impact of selectivity (throughput, memory-resident, low concurrency)", map[string]string{
			"sf": "0.01", "selectivity": "0.02,0.1,0.25,0.5,0.75,1.0", "clients": "2", "duration_ms": "1000",
		}
	case 4:
		return "Scenario IV: impact of similarity (throughput + SP counters, batched)", map[string]string{
			"sf": "0.01", "plans": "1,2,4,8,16", "clients": "16", "duration_ms": "1000", "template": "Q2.1",
		}
	default:
		return "Scenario I: push-based vs pull-based SP (response time, TPC-H Q1)", map[string]string{
			"sf": "0.01", "concurrency": "1,2,4,8,16,32", "cores": "8", "residency": "memory",
		}
	}
}

func main() {
	flag.Parse()
	mux := http.NewServeMux()
	mux.HandleFunc("/", handleIndex)
	mux.HandleFunc("/run", handleRun)

	srv := &http.Server{
		Addr:    *addr,
		Handler: mux,
		// An experiment run can take minutes (handleRun budgets 5), so the
		// write timeout must cover the longest sweep; the header/read/idle
		// timeouts bound slow or stuck clients.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      6 * time.Minute,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("demo GUI listening on %s", *addr)
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("signal received; draining in-flight runs")
	shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
}

func handleIndex(w http.ResponseWriter, r *http.Request) {
	s, _ := strconv.Atoi(r.FormValue("scenario"))
	if s < 1 || s > 4 {
		s = 1
	}
	title, params := scenarioDefaults(s)
	render(w, page{Title: title, Scenario: s, Params: params})
}

func render(w http.ResponseWriter, p page) {
	if err := tmpl.Execute(w, p); err != nil {
		log.Printf("render: %v", err)
	}
}

// formParams echoes submitted values back into the form.
func formParams(r *http.Request, defaults map[string]string) map[string]string {
	out := make(map[string]string, len(defaults))
	for k, v := range defaults {
		if got := r.FormValue(k); got != "" {
			out[k] = got
		} else {
			out[k] = v
		}
	}
	return out
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloatList(s string) ([]float64, error) {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float list %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseTpl(s string) (ssb.Template, error) {
	for _, t := range ssb.AllTemplates {
		if strings.EqualFold(t.String(), s) {
			return t, nil
		}
	}
	return 0, fmt.Errorf("unknown template %q", s)
}

func handleRun(w http.ResponseWriter, r *http.Request) {
	s, _ := strconv.Atoi(r.FormValue("scenario"))
	title, defaults := scenarioDefaults(s)
	params := formParams(r, defaults)
	p := page{Title: title, Scenario: s, Params: params}

	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Minute)
	defer cancel()
	start := time.Now()
	var err error
	switch s {
	case 2:
		err = runII(ctx, params, &p)
	case 3:
		err = runIII(ctx, params, &p)
	case 4:
		err = runIV(ctx, params, &p)
	default:
		err = runI(ctx, params, &p)
	}
	p.Elapsed = time.Since(start).Round(time.Millisecond)
	if err != nil {
		p.Err = err.Error()
	}
	render(w, p)
}

func runI(ctx context.Context, params map[string]string, p *page) error {
	conc, err := parseIntList(params["concurrency"])
	if err != nil {
		return err
	}
	sf, _ := strconv.ParseFloat(params["sf"], 64)
	cores, _ := strconv.Atoi(params["cores"])
	res := repro.MemoryResident
	if params["residency"] == "disk" {
		res = repro.DiskResident
	}
	out, err := repro.RunScenarioI(ctx, repro.ScenarioIConfig{
		SF: sf, Cores: cores, Concurrency: conc, Residency: res,
	})
	if err != nil {
		return err
	}
	var xt []string
	resp := map[string][]float64{}
	util := map[string][]float64{}
	for _, pt := range out.Points {
		xt = append(xt, strconv.Itoa(pt.Concurrency))
		for _, l := range out.Lines {
			resp[l] = append(resp[l], pt.Response[l].Seconds()*1000)
			util[l] = append(util[l], pt.CPUUtil[l]*100)
		}
	}
	var s1, s2 []chartSeries
	for _, l := range out.Lines {
		s1 = append(s1, chartSeries{Label: l, Values: resp[l]})
		s2 = append(s2, chartSeries{Label: l, Values: util[l]})
	}
	p.Chart = template.HTML(renderSVG("Workload response time", "ms", xt, s1))
	p.Chart2 = template.HTML(renderSVG("CPU utilisation", "%", xt, s2))
	p.Header = append([]string{"concurrency"}, out.Lines...)
	for _, pt := range out.Points {
		row := []string{strconv.Itoa(pt.Concurrency)}
		for _, l := range out.Lines {
			row = append(row, pt.Response[l].Round(100*time.Microsecond).String())
		}
		p.Table = append(p.Table, row)
	}
	p.Note = "Push-SP serializes on copying pages to satellites; the SPL removes the bottleneck (§4.3)."
	return nil
}

func runII(ctx context.Context, params map[string]string, p *page) error {
	clients, err := parseIntList(params["clients"])
	if err != nil {
		return err
	}
	sf, _ := strconv.ParseFloat(params["sf"], 64)
	durMS, _ := strconv.Atoi(params["duration_ms"])
	tpl, err := parseTpl(params["template"])
	if err != nil {
		return err
	}
	out, err := repro.RunScenarioII(ctx, repro.ScenarioIIConfig{
		SF: sf, Clients: clients, Template: tpl, Duration: time.Duration(durMS) * time.Millisecond,
	})
	if err != nil {
		return err
	}
	var xt []string
	tp := map[string][]float64{}
	for _, pt := range out.Points {
		xt = append(xt, strconv.Itoa(pt.Clients))
		for _, l := range out.Lines {
			tp[l] = append(tp[l], pt.Throughput[l])
		}
	}
	var series []chartSeries
	for _, l := range out.Lines {
		series = append(series, chartSeries{Label: l, Values: tp[l]})
	}
	p.Chart = template.HTML(renderSVG("Throughput vs concurrent clients", "queries/s", xt, series))
	p.Header = append([]string{"clients"}, out.Lines...)
	for _, pt := range out.Points {
		row := []string{strconv.Itoa(pt.Clients)}
		for _, l := range out.Lines {
			row = append(row, fmt.Sprintf("%.1f", pt.Throughput[l]))
		}
		p.Table = append(p.Table, row)
	}
	p.Note = "Shared GQP operators win under high concurrency (§4.4, Scenario II)."
	return nil
}

func runIII(ctx context.Context, params map[string]string, p *page) error {
	sels, err := parseFloatList(params["selectivity"])
	if err != nil {
		return err
	}
	sf, _ := strconv.ParseFloat(params["sf"], 64)
	clients, _ := strconv.Atoi(params["clients"])
	durMS, _ := strconv.Atoi(params["duration_ms"])
	out, err := repro.RunScenarioIII(ctx, repro.ScenarioIIIConfig{
		SF: sf, Selectivities: sels, Clients: clients,
		Duration: time.Duration(durMS) * time.Millisecond,
	})
	if err != nil {
		return err
	}
	var xt []string
	tp := map[string][]float64{}
	for _, pt := range out.Points {
		xt = append(xt, fmt.Sprintf("%.0f%%", pt.Selectivity*100))
		for _, l := range out.Lines {
			tp[l] = append(tp[l], pt.Throughput[l])
		}
	}
	var series []chartSeries
	for _, l := range out.Lines {
		series = append(series, chartSeries{Label: l, Values: tp[l]})
	}
	p.Chart = template.HTML(renderSVG("Throughput vs selectivity", "queries/s", xt, series))
	p.Header = append([]string{"selectivity"}, out.Lines...)
	for _, pt := range out.Points {
		row := []string{fmt.Sprintf("%.2f", pt.Selectivity)}
		for _, l := range out.Lines {
			row = append(row, fmt.Sprintf("%.1f", pt.Throughput[l]))
		}
		p.Table = append(p.Table, row)
	}
	p.Note = "At low concurrency the GQP's bitmap bookkeeping loses to query-centric operators (§4.4, Scenario III)."
	return nil
}

func runIV(ctx context.Context, params map[string]string, p *page) error {
	plans, err := parseIntList(params["plans"])
	if err != nil {
		return err
	}
	sf, _ := strconv.ParseFloat(params["sf"], 64)
	clients, _ := strconv.Atoi(params["clients"])
	durMS, _ := strconv.Atoi(params["duration_ms"])
	tpl, err := parseTpl(params["template"])
	if err != nil {
		return err
	}
	out, err := repro.RunScenarioIV(ctx, repro.ScenarioIVConfig{
		SF: sf, Plans: plans, Clients: clients, Template: tpl,
		Duration: time.Duration(durMS) * time.Millisecond,
	})
	if err != nil {
		return err
	}
	var xt []string
	tp := map[string][]float64{}
	var sat []float64
	for _, pt := range out.Points {
		xt = append(xt, strconv.Itoa(pt.Plans))
		for _, l := range out.Lines {
			tp[l] = append(tp[l], pt.Throughput[l])
		}
		sat = append(sat, float64(pt.SPAttachedCJoin[workload.LineGQPSP]))
	}
	var series []chartSeries
	for _, l := range out.Lines {
		series = append(series, chartSeries{Label: l, Values: tp[l]})
	}
	p.Chart = template.HTML(renderSVG("Throughput vs distinct plans", "queries/s", xt, series))
	p.Chart2 = template.HTML(renderSVG("CJOIN-stage SP satellites (gqp+sp)", "satellites", xt,
		[]chartSeries{{Label: "satellites", Values: sat}}))
	p.Header = append([]string{"plans"}, append(append([]string{}, out.Lines...), "gqp+sp admits", "cjoin satellites")...)
	for _, pt := range out.Points {
		row := []string{strconv.Itoa(pt.Plans)}
		for _, l := range out.Lines {
			row = append(row, fmt.Sprintf("%.1f", pt.Throughput[l]))
		}
		row = append(row,
			strconv.FormatInt(pt.Admitted[workload.LineGQPSP], 10),
			strconv.FormatInt(pt.SPAttachedCJoin[workload.LineGQPSP], 10))
		p.Table = append(p.Table, row)
	}
	p.Note = "SP on the CJOIN stage admits one query per identical star sub-plan (§3, Figure 2)."
	return nil
}
