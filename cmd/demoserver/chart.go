package main

import (
	"fmt"
	"math"
	"strings"
)

// chartSeries is one plotted line.
type chartSeries struct {
	Label  string
	Values []float64
}

// lineColors cycles through the demo palette (the paper's GUI uses dark/light
// blue for its two engines).
var lineColors = []string{"#1f4e8c", "#4fa3d1", "#d1772f", "#4f9d69"}

// renderSVG draws a simple line chart: x tick labels, y axis scaled to the
// data, one polyline per series, and a legend. Stdlib-only stand-in for the
// demo GUI's dynamically generated graphs.
func renderSVG(title, yLabel string, xticks []string, series []chartSeries) string {
	const (
		w, h                     = 640, 360
		left, right, top, bottom = 70, 20, 40, 60
	)
	plotW := float64(w - left - right)
	plotH := float64(h - top - bottom)

	ymax := 0.0
	for _, s := range series {
		for _, v := range s.Values {
			if v > ymax {
				ymax = v
			}
		}
	}
	if ymax <= 0 {
		ymax = 1
	}
	ymax *= 1.1

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, h, w, h)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&sb, `<text x="%d" y="22" font-size="15" font-family="sans-serif" font-weight="bold">%s</text>`, left, title)

	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`, left, top, left, h-bottom)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`, left, h-bottom, w-right, h-bottom)
	fmt.Fprintf(&sb, `<text x="14" y="%d" font-size="11" font-family="sans-serif" transform="rotate(-90 14 %d)">%s</text>`,
		(top+h-bottom)/2+30, (top+h-bottom)/2+30, yLabel)

	// Y grid lines and labels.
	for i := 0; i <= 4; i++ {
		v := ymax * float64(i) / 4
		y := float64(h-bottom) - plotH*float64(i)/4
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`, left, y, w-right, y)
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" font-size="10" font-family="sans-serif" text-anchor="end">%s</text>`,
			left-6, y+3, compactNumber(v))
	}

	// X positions and tick labels.
	n := len(xticks)
	xpos := func(i int) float64 {
		if n == 1 {
			return float64(left) + plotW/2
		}
		return float64(left) + plotW*float64(i)/float64(n-1)
	}
	for i, lbl := range xticks {
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" font-size="10" font-family="sans-serif" text-anchor="middle">%s</text>`,
			xpos(i), h-bottom+16, lbl)
	}

	// Series polylines and point markers.
	for si, s := range series {
		color := lineColors[si%len(lineColors)]
		var pts []string
		for i, v := range s.Values {
			if i >= n || math.IsNaN(v) {
				continue
			}
			y := float64(h-bottom) - plotH*v/ymax
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xpos(i), y))
		}
		fmt.Fprintf(&sb, `<polyline fill="none" stroke="%s" stroke-width="2.2" points="%s"/>`,
			color, strings.Join(pts, " "))
		for _, p := range pts {
			var px, py float64
			fmt.Sscanf(p, "%f,%f", &px, &py)
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`, px, py, color)
		}
	}

	// Legend.
	lx := left + 10
	for si, s := range series {
		color := lineColors[si%len(lineColors)]
		y := h - 18
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`, lx, y-10, color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="11" font-family="sans-serif">%s</text>`, lx+16, y, s.Label)
		lx += 16 + 9*len(s.Label) + 24
		_ = si
	}

	sb.WriteString(`</svg>`)
	return sb.String()
}

// compactNumber renders axis labels ("1.2k", "350m" for millis).
func compactNumber(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case v >= 10:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
