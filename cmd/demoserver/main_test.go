package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestIndexRendersEveryScenarioForm(t *testing.T) {
	for _, s := range []string{"1", "2", "3", "4", "", "9"} {
		req := httptest.NewRequest(http.MethodGet, "/?scenario="+s, nil)
		rec := httptest.NewRecorder()
		handleIndex(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("scenario %q: status %d", s, rec.Code)
		}
		body := rec.Body.String()
		if !strings.Contains(body, "<form") || !strings.Contains(body, "Run") {
			t.Errorf("scenario %q: form missing", s)
		}
	}
}

func TestRunScenarioIEndpoint(t *testing.T) {
	req := httptest.NewRequest(http.MethodGet,
		"/run?scenario=1&sf=0.001&concurrency=1,2&cores=2&residency=memory", nil)
	rec := httptest.NewRecorder()
	handleRun(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	if strings.Contains(body, `class="err"`) {
		t.Fatalf("run returned an error page:\n%s", body)
	}
	if strings.Count(body, "<svg") != 2 {
		t.Errorf("want 2 charts (response time + CPU), got %d", strings.Count(body, "<svg"))
	}
	if !strings.Contains(body, "<table>") {
		t.Error("data table missing")
	}
}

func TestRunScenarioIIIEndpoint(t *testing.T) {
	req := httptest.NewRequest(http.MethodGet,
		"/run?scenario=3&sf=0.001&selectivity=0.5&clients=2&duration_ms=100", nil)
	rec := httptest.NewRecorder()
	handleRun(rec, req)
	body := rec.Body.String()
	if strings.Contains(body, `class="err"`) {
		t.Fatalf("run returned an error page:\n%s", body)
	}
	if !strings.Contains(body, "qpipe+sp") || !strings.Contains(body, "gqp") {
		t.Error("line labels missing from output")
	}
}

func TestRunRejectsBadParams(t *testing.T) {
	req := httptest.NewRequest(http.MethodGet, "/run?scenario=2&clients=nope", nil)
	rec := httptest.NewRecorder()
	handleRun(rec, req)
	if !strings.Contains(rec.Body.String(), `class="err"`) {
		t.Error("bad parameter must render an error, not crash")
	}
	req = httptest.NewRequest(http.MethodGet, "/run?scenario=2&clients=1&template=QX.Y&duration_ms=50&sf=0.001", nil)
	rec = httptest.NewRecorder()
	handleRun(rec, req)
	if !strings.Contains(rec.Body.String(), `class="err"`) {
		t.Error("unknown template must render an error")
	}
}

func TestChartRendersSeries(t *testing.T) {
	svg := renderSVG("t", "y", []string{"1", "2", "4"}, []chartSeries{
		{Label: "a", Values: []float64{1, 2, 3}},
		{Label: "b", Values: []float64{3, 2, 1}},
	})
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatal("not an svg document")
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("want 2 polylines, got %d", strings.Count(svg, "<polyline"))
	}
	for _, want := range []string{">a<", ">b<", ">1<", ">4<"} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	// Degenerate inputs must not panic or divide by zero.
	_ = renderSVG("t", "y", []string{"1"}, []chartSeries{{Label: "a", Values: []float64{0}}})
	_ = renderSVG("t", "y", nil, nil)
}
