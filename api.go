// Package repro is a from-scratch Go reproduction of "Reactive and Proactive
// Sharing Across Concurrent Analytical Queries" (Psaroudakis et al., SIGMOD
// 2014): the QPipe staged execution engine with Simultaneous Pipelining
// (reactive sharing, push-based over FIFOs or pull-based over Shared Pages
// Lists), the CJOIN operator evaluating a Global Query Plan with shared
// scans / selections / hash-joins (proactive sharing), their integration
// (SP applied on top of the GQP), and the storage and workload substrates
// required to regenerate the paper's four demonstration scenarios.
//
// This package is the facade: it re-exports the building blocks and offers
// System, a convenience wrapper that assembles a database instance
// (simulated disk, buffer pool, generated SSB or TPC-H data, a running CJOIN
// pipeline) and hands out execution engines. The heavy lifting lives in the
// internal packages:
//
//	internal/storage   pages, disks, buffer pool, circular shared scans
//	internal/engine    QPipe stages, packets, operators, the SP registry
//	internal/spl       the Shared Pages List
//	internal/cjoin     the CJOIN global query plan
//	internal/plan      operator trees and star-query descriptors
//	internal/expr      predicates and scalar expressions
//	internal/ssb       Star Schema Benchmark generator and templates
//	internal/tpch      TPC-H lineitem generator and Q1
//	internal/workload  Scenario I-IV runners
package repro

import (
	"fmt"

	"repro/internal/cjoin"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/service"
	"repro/internal/ssb"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/workload"
)

// Re-exported building blocks. The aliases make the internal packages'
// types usable through the public facade.
type (
	// Engine is the QPipe execution engine.
	Engine = engine.Engine
	// EngineConfig tunes an engine (SP on/off per stage, push vs pull, ...).
	EngineConfig = engine.Config
	// Result is a materialized query result.
	Result = engine.Result
	// SPModel selects push-based (FIFO) or pull-based (SPL) sharing.
	SPModel = engine.SPModel
	// StageStats snapshots one stage's counters (SP attaches, misses, ...).
	StageStats = engine.StageStats
	// EngineStats snapshots all stages.
	EngineStats = engine.EngineStats

	// Catalog is a database instance: disk, buffer pool and tables.
	Catalog = storage.Catalog
	// Table couples a heap file with its shared-scan coordinator.
	Table = storage.Table
	// DiskProfile models a simulated disk's latency and bandwidth.
	DiskProfile = storage.DiskProfile

	// Node is a query plan operator.
	Node = plan.Node
	// PlanKind identifies an operator (and its QPipe stage).
	PlanKind = plan.Kind
	// StarQuery describes a star join for CJOIN admission or query-centric
	// expansion.
	StarQuery = plan.StarQuery
	// DimJoin is one dimension of a star query.
	DimJoin = plan.DimJoin

	// CJoinOperator is a running CJOIN pipeline (Global Query Plan).
	CJoinOperator = cjoin.Operator
	// CJoinConfig tunes the GQP (batch sizes, queue depths, and Workers —
	// the number of parallel probe pipelines, defaulting to GOMAXPROCS).
	CJoinConfig = cjoin.Config
	// CJoinDimSpec fixes one dimension of the GQP chain.
	CJoinDimSpec = cjoin.DimSpec
	// CJoinStats snapshots the GQP's counters.
	CJoinStats = cjoin.Stats

	// SSBDatabase is a generated Star Schema Benchmark database.
	SSBDatabase = ssb.DB
	// SSBTemplate identifies one of the 13 SSB query templates.
	SSBTemplate = ssb.Template
	// SSBInstance is one instantiated SSB query (star + upper fragment).
	SSBInstance = ssb.Instance

	// Gateway is the admission-controlled query service tier: bounded
	// per-latency-class FIFOs, backpressure shedding, deadline-aware
	// admission and streaming delivery in front of an Engine.
	Gateway = service.Gateway
	// ServiceConfig sizes a Gateway (per-class slots, queue depth,
	// high-water mark, classification thresholds).
	ServiceConfig = service.Config
	// ServiceStats snapshots a Gateway plus the engine-side counters it
	// fronts (the /statsz payload).
	ServiceStats = service.Stats
	// ServiceClass is a latency class (short or long).
	ServiceClass = service.Class
	// ServicePriority orders arrivals for shedding (Normal sheds first).
	ServicePriority = service.Priority
	// OverloadError is the typed rejection of a shed arrival (carries the
	// Retry-After hint); matches ErrOverloaded via errors.Is.
	OverloadError = service.OverloadError
	// WouldMissError is the typed rejection of a query whose deadline
	// cannot cover its class's p95 service time; matches ErrWouldMiss.
	WouldMissError = service.WouldMissError
)

// Service-tier sentinels and enums.
var (
	// ErrOverloaded matches every backpressure shed (errors.Is).
	ErrOverloaded = service.ErrOverloaded
	// ErrWouldMiss matches every deadline-aware rejection (errors.Is).
	ErrWouldMiss = service.ErrWouldMiss
)

// Latency classes and shedding priorities.
const (
	ClassShort     = service.ClassShort
	ClassLong      = service.ClassLong
	PriorityNormal = service.Normal
	PriorityHigh   = service.High
)

// Sharing models.
const (
	// SPPush is the original push-based SP (producer copies pages into every
	// satellite FIFO).
	SPPush = engine.SPPush
	// SPPull is pull-based SP over the Shared Pages List.
	SPPull = engine.SPPull
)

// Stage kinds, used as EngineConfig.SPStages keys.
const (
	KindScan      = plan.KindScan
	KindFilter    = plan.KindFilter
	KindProject   = plan.KindProject
	KindHashJoin  = plan.KindHashJoin
	KindAggregate = plan.KindAggregate
	KindSort      = plan.KindSort
	KindCJoin     = plan.KindCJoin
)

// Workload generation and plan building helpers.
var (
	// GenerateSSB loads a Star Schema Benchmark database into a catalog.
	GenerateSSB = ssb.Generate
	// InstantiateSSB draws one randomized instance of an SSB template.
	InstantiateSSB = ssb.Instantiate
	// SSBPool pre-generates n distinct instances of a template.
	SSBPool = ssb.Pool
	// GenerateTPCH loads the TPC-H lineitem table into a catalog.
	GenerateTPCH = tpch.Generate
	// Q1Plan builds the TPC-H Q1 plan (Scenario I's query).
	Q1Plan = tpch.Q1Plan
)

// The SSB templates.
const (
	Q1_1 = ssb.Q1_1
	Q1_2 = ssb.Q1_2
	Q1_3 = ssb.Q1_3
	Q2_1 = ssb.Q2_1
	Q2_2 = ssb.Q2_2
	Q2_3 = ssb.Q2_3
	Q3_1 = ssb.Q3_1
	Q3_2 = ssb.Q3_2
	Q3_3 = ssb.Q3_3
	Q3_4 = ssb.Q3_4
	Q4_1 = ssb.Q4_1
	Q4_2 = ssb.Q4_2
	Q4_3 = ssb.Q4_3
)

// Scenario runners and their configurations (the paper's §4 experiments).
type (
	// Residency selects memory- vs disk-resident databases.
	Residency = workload.Residency
	// ScenarioIConfig parameterizes Scenario I (push vs pull SP).
	ScenarioIConfig = workload.ScenarioIConfig
	// ScenarioIResult holds Scenario I series.
	ScenarioIResult = workload.ScenarioIResult
	// ScenarioIIConfig parameterizes Scenario II (impact of concurrency).
	ScenarioIIConfig = workload.ScenarioIIConfig
	// ScenarioIIResult holds Scenario II series.
	ScenarioIIResult = workload.ScenarioIIResult
	// ScenarioIIIConfig parameterizes Scenario III (impact of selectivity).
	ScenarioIIIConfig = workload.ScenarioIIIConfig
	// ScenarioIIIResult holds Scenario III series.
	ScenarioIIIResult = workload.ScenarioIIIResult
	// ScenarioIVConfig parameterizes Scenario IV (impact of similarity).
	ScenarioIVConfig = workload.ScenarioIVConfig
	// ScenarioIVResult holds Scenario IV series.
	ScenarioIVResult = workload.ScenarioIVResult
	// ScenarioIVPruneConfig parameterizes the Scenario IV pruning axis
	// (date-clustered fact table, zone-map pruning on vs off).
	ScenarioIVPruneConfig = workload.ScenarioIVPruneConfig
	// ScenarioIVPruneResult holds the pruning-axis series.
	ScenarioIVPruneResult = workload.ScenarioIVPruneResult
	// ScenarioIIRepeatConfig parameterizes the Scenario II repeat-template
	// axis (query folding + result cache vs both disabled).
	ScenarioIIRepeatConfig = workload.ScenarioIIRepeatConfig
	// ScenarioIIRepeatResult holds the repeat-axis series.
	ScenarioIIRepeatResult = workload.ScenarioIIRepeatResult
	// ScenarioFConfig parameterizes the Scenario F fault axis (goodput vs
	// poisoned-page rate under blast-radius containment).
	ScenarioFConfig = workload.ScenarioFConfig
	// ScenarioFResult holds the fault-axis points.
	ScenarioFResult = workload.ScenarioFResult
	// ScenarioFPoint is one fault-rate measurement.
	ScenarioFPoint = workload.ScenarioFPoint
	// ScenarioVConfig parameterizes the Scenario V overload axis (open-loop
	// Poisson arrivals through the service tier, offered load past capacity).
	ScenarioVConfig = workload.ScenarioVConfig
	// ScenarioVResult holds the offered-load points plus the calibrated
	// capacity they scale.
	ScenarioVResult = workload.ScenarioVResult
	// ScenarioVPoint is one offered-load measurement.
	ScenarioVPoint = workload.ScenarioVPoint
)

// Scenario entry points.
var (
	// RunScenarioI reproduces §4.3 (Figure 4).
	RunScenarioI = workload.RunScenarioI
	// RunScenarioII reproduces §4.4 scenario II.
	RunScenarioII = workload.RunScenarioII
	// RunScenarioIII reproduces §4.4 scenario III.
	RunScenarioIII = workload.RunScenarioIII
	// RunScenarioIV reproduces §4.4 scenario IV.
	RunScenarioIV = workload.RunScenarioIV
	// RunScenarioIVPrune runs the Scenario IV pruning axis: date-window
	// queries on a date-clustered fact table, pruning on vs off.
	RunScenarioIVPrune = workload.RunScenarioIVPrune
	// RunScenarioIIRepeat runs the Scenario II repeat-template axis:
	// subsumption folding + materialized result cache vs both disabled.
	RunScenarioIIRepeat = workload.RunScenarioIIRepeat
	// RunScenarioF runs the fault axis: a rising fraction of fact pages is
	// permanently poisoned and goodput must degrade proportionally (only
	// queries whose date windows cover a quarantined page fail).
	RunScenarioF = workload.RunScenarioF
	// RunScenarioV runs the overload axis: open-loop Poisson arrivals of a
	// short/long query mix through the admission-controlled gateway, offered
	// load swept past calibrated capacity — goodput must degrade gracefully.
	RunScenarioV = workload.RunScenarioV
)

// Residency values.
const (
	// MemoryResident databases fit entirely in the buffer pool.
	MemoryResident = workload.MemoryResident
	// DiskResident databases pay simulated I/O latency on pool misses.
	DiskResident = workload.DiskResident
)

// Config assembles a System.
type Config struct {
	// DiskResident selects a latency/bandwidth-modelled disk (HDD profile)
	// with a partial buffer pool; otherwise the database is memory-resident.
	DiskResident bool
	// Profile overrides the simulated disk profile (nil = HDD profile when
	// DiskResident, zero-latency otherwise).
	Profile *DiskProfile
	// BufferPoolPages sizes the buffer pool (0 = 2048 pages = 64 MiB).
	BufferPoolPages int
	// CJoin tunes the CJOIN Global Query Plan started by LoadSSB; the zero
	// value selects every default (notably Workers = GOMAXPROCS parallel
	// probe pipelines). Invalid values surface as a LoadSSB error.
	CJoin CJoinConfig
	// DisableFold disables predicate-subsumption query folding at CJOIN
	// admission (folding is on by default: a star query implied by one
	// already sweeping shares its bitmap slot and applies only the
	// residual predicate).
	DisableFold bool
	// DisableResultCache disables the materialized result cache in engines
	// built by NewEngine (on by default: exact repeat templates answer
	// from the previous materialization until a base table changes).
	DisableResultCache bool
}

// System is an assembled database instance: a simulated disk, a buffer pool,
// generated data, and (once an SSB database is loaded) a running CJOIN
// pipeline usable as the engines' Global Query Plan.
type System struct {
	cat      *storage.Catalog
	disk     *storage.MemDisk
	gqp      *cjoin.Operator
	gqpCfg   cjoin.Config
	noCache  bool
	ssbDB    *ssb.DB
	lineitem *storage.Table
}

// NewSystem creates an empty system.
func NewSystem(cfg Config) *System {
	profile := storage.DiskProfile{}
	if cfg.DiskResident {
		profile = storage.HDDProfile
	}
	if cfg.Profile != nil {
		profile = *cfg.Profile
	}
	pool := cfg.BufferPoolPages
	if pool <= 0 {
		pool = 2048
	}
	disk := storage.NewMemDisk(profile)
	gqpCfg := cfg.CJoin
	if cfg.DisableFold {
		gqpCfg.DisableFold = true
	}
	return &System{cat: storage.NewCatalog(disk, pool, true), disk: disk,
		gqpCfg: gqpCfg, noCache: cfg.DisableResultCache}
}

// Catalog exposes the underlying catalog (table creation, buffer pool
// statistics, raw scans).
func (s *System) Catalog() *Catalog { return s.cat }

// LoadSSB generates the Star Schema Benchmark database at the given scale
// factor and starts the CJOIN pipeline over its full dimension chain.
func (s *System) LoadSSB(sf float64, seed int64) (*SSBDatabase, error) {
	if s.ssbDB != nil {
		return nil, fmt.Errorf("repro: SSB already loaded")
	}
	db, err := ssb.Generate(s.cat, sf, seed)
	if err != nil {
		return nil, err
	}
	op, err := cjoin.NewOperator(db.Lineorder, []cjoin.DimSpec{
		{Table: db.Date, FactKeyCol: ssb.LOOrderDate, DimKeyCol: ssb.DDateKey},
		{Table: db.Customer, FactKeyCol: ssb.LOCustKey, DimKeyCol: ssb.CCustKey},
		{Table: db.Supplier, FactKeyCol: ssb.LOSuppKey, DimKeyCol: ssb.SSuppKey},
		{Table: db.Part, FactKeyCol: ssb.LOPartKey, DimKeyCol: ssb.PPartKey},
	}, s.gqpCfg)
	if err != nil {
		return nil, err
	}
	s.ssbDB, s.gqp = db, op
	return db, nil
}

// LoadTPCH generates the TPC-H lineitem table (Scenario I's data).
func (s *System) LoadTPCH(sf float64, seed int64) (*Table, error) {
	if s.lineitem != nil {
		return nil, fmt.Errorf("repro: TPC-H already loaded")
	}
	tbl, err := tpch.Generate(s.cat, sf, seed)
	if err != nil {
		return nil, err
	}
	s.lineitem = tbl
	return tbl, nil
}

// GQP returns the running CJOIN operator (nil before LoadSSB).
func (s *System) GQP() *CJoinOperator { return s.gqp }

// SSB returns the loaded SSB database (nil before LoadSSB).
func (s *System) SSB() *SSBDatabase { return s.ssbDB }

// Lineitem returns the loaded TPC-H table (nil before LoadTPCH).
func (s *System) Lineitem() *Table { return s.lineitem }

// NewGateway builds an admission-controlled service tier over a fresh engine
// (see NewEngine), pre-wiring the system's CJOIN operator and buffer pool
// into the gateway's Stats snapshot. Callers submit plans through
// Gateway.Submit / Gateway.Stream instead of talking to the engine directly;
// overload surfaces as typed ErrOverloaded / ErrWouldMiss rejections rather
// than unbounded queueing.
func (s *System) NewGateway(engCfg EngineConfig, svcCfg ServiceConfig) *Gateway {
	if svcCfg.CJoin == nil {
		svcCfg.CJoin = s.gqp
	}
	if svcCfg.Pool == nil {
		svcCfg.Pool = s.cat.Pool()
	}
	return service.NewGateway(s.NewEngine(engCfg), svcCfg)
}

// NewEngine builds an execution engine over the system, wiring the CJOIN
// pipeline as the engine's StarRunner when one is running. Unless the
// system was configured with DisableResultCache, the engine's materialized
// result cache is enabled — callers must treat results as shared/read-only.
func (s *System) NewEngine(cfg EngineConfig) *Engine {
	if cfg.Star == nil && s.gqp != nil {
		cfg.Star = s.gqp
	}
	if !s.noCache {
		cfg.ResultCache = true
	}
	return engine.New(s.cat, cfg)
}

// Close shuts the CJOIN pipeline down and releases the simulated disk.
func (s *System) Close() {
	if s.gqp != nil {
		s.gqp.Close()
		s.gqp = nil
	}
	if s.disk != nil {
		_ = s.disk.Close()
	}
}
